package align

import "infoshield/internal/mdl"

// TokenCounts returns doc's token multiset as a count map.
func TokenCounts(doc []int) map[int]int {
	counts := make(map[int]int, len(doc))
	for _, t := range doc {
		counts[t]++
	}
	return counts
}

// Overlap returns the multiset intersection size between a precomputed
// count map and doc. It is the tight upper bound on how many tokens any
// alignment can match.
func Overlap(refCounts map[int]int, doc []int) int {
	docCounts := TokenCounts(doc)
	m := 0
	for t, dc := range docCounts {
		if rc := refCounts[t]; rc < dc {
			m += rc
		} else {
			m += dc
		}
	}
	return m
}

// SortedCopy returns doc's tokens in ascending order — the precomputable
// half of OverlapSorted.
func SortedCopy(doc []int) []int {
	s := append([]int(nil), doc...)
	sortInts(s)
	return s
}

// SortInts sorts a ascending in place — the non-allocating form of
// SortedCopy for callers that manage their own buffers (the fine pass
// packs its sorted copies into an arena).
func SortInts(a []int) { sortInts(a) }

// sortInts is an introsort avoiding the sort package's interface overhead
// on the short sequences documents produce: insertion sort below 24
// elements, middle-pivot quicksort above, and a heap-sort fallback once
// the recursion depth exceeds 2·⌊lg n⌋ — the classic guard that keeps
// adversarial pivot patterns (median-killer inputs) O(n log n) instead of
// quadratic.
func sortInts(a []int) {
	depth := 0
	for n := len(a); n > 0; n >>= 1 {
		depth += 2
	}
	introSortInts(a, depth)
}

func introSortInts(a []int, depth int) {
	for len(a) >= 24 {
		if depth == 0 {
			heapSortInts(a)
			return
		}
		depth--
		pivot := a[len(a)/2]
		lo, hi := 0, len(a)-1
		for lo <= hi {
			for a[lo] < pivot {
				lo++
			}
			for a[hi] > pivot {
				hi--
			}
			if lo <= hi {
				a[lo], a[hi] = a[hi], a[lo]
				lo++
				hi--
			}
		}
		// Recurse into the smaller half, loop on the larger: stack depth
		// stays O(lg n) even before the heap-sort guard triggers.
		if hi+1 < len(a)-lo {
			introSortInts(a[:hi+1], depth)
			a = a[lo:]
		} else {
			introSortInts(a[lo:], depth)
			a = a[:hi+1]
		}
	}
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// heapSortInts is the depth-limit fallback: in-place max-heap selection.
func heapSortInts(a []int) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownInts(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDownInts(a, 0, end)
	}
}

func siftDownInts(a []int, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

// OverlapSorted returns the multiset intersection size of two ascending
// token slices by linear merge — the allocation-free fast path of the
// candidate screen (the profile-dominant operation on large clusters).
func OverlapSorted(a, b []int) int {
	i, j, m := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			m++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return m
}

// ConditionalLowerBound returns a lower bound on C(doc|ref) computable in
// O(len(doc)) — without running the O(len²) alignment DP. Derivation: any
// alignment has at most `overlap` matches, so at least
// max(refLen,docLen)-overlap unmatched operations and at least
// docLen-overlap vocabulary-indexed words, over an alignment of length at
// least max(refLen,docLen); every term of the Eq. 3 cost is monotone in
// these quantities.
//
// InfoShield-Fine uses this to skip the full alignment for documents that
// cannot possibly pass the C(d|d1) < C(d) candidate test — the common case
// inside large, mostly heterogeneous coarse clusters.
// WildConditionalLowerBound returns a lower bound on the matched data
// cost of aligning a document against a wildcard template (the streaming
// detector's C(d|T)), computable without running the O(len²) PairwiseWild
// DP. Inputs: the template's full length refLen (constants + slots), the
// document length docLen, the multiset overlap between the template's
// *constant* tokens and the document, and the template's canned SlotWords
// vector (len = slot count; passing the very slice the exact cost uses
// keeps the slot term of the bound float-identical to the exact cost's).
//
// Admissibility (bound ≤ exact cost for the alignment PairwiseWild
// returns): any global alignment has
//
//	l̂ = matches + subs + inss + dels ≥ max(refLen, docLen)
//	matches ≤ overlap + slots       (a match consumes a wildcard position
//	                                 or a constant equal to a doc token)
//	matches ≤ min(refLen, docLen)
//	e  = l̂ − matches               (unmatched operations)
//	u  = docLen − matches          (each doc token is match, sub, or ins)
//
// and every term of mdl.DataCostMatched is nondecreasing in (l̂, e, u) —
// in the spirit of Lemma 1's relative-length bound, extending
// ConditionalLowerBound to slotted templates — so evaluating it at the
// componentwise minima (l̂ = max lengths, matches = its upper bound)
// cannot exceed the exact cost. Termwise domination plus an identical
// summation order keeps the inequality true in floating point, not just
// in exact arithmetic. The streaming detector skips the DP for templates
// whose bound already reaches the best cost found so far, which cannot
// change the winning template or its cost.
func WildConditionalLowerBound(refLen, docLen, overlap int, slotWords []int, numTemplates, vocabSize int) float64 {
	alignLen := refLen
	if docLen > alignLen {
		alignLen = docLen
	}
	maxMatches := overlap + len(slotWords)
	if mn := min(refLen, docLen); maxMatches > mn {
		maxMatches = mn
	}
	unmatched := alignLen - maxMatches
	if unmatched < 0 {
		unmatched = 0
	}
	added := docLen - maxMatches
	if added < 0 {
		added = 0
	}
	return mdl.DataCostMatched(mdl.AlignStats{
		AlignLen:   alignLen,
		Unmatched:  unmatched,
		AddedWords: added,
		SlotWords:  slotWords,
	}, numTemplates, vocabSize)
}

func ConditionalLowerBound(refLen, docLen, overlap, vocabSize int) float64 {
	alignLen := refLen
	if docLen > alignLen {
		alignLen = docLen
	}
	unmatched := alignLen - overlap
	if unmatched < 0 {
		unmatched = 0
	}
	added := docLen - overlap
	if added < 0 {
		added = 0
	}
	return mdl.DataCostMatched(mdl.AlignStats{
		AlignLen:   alignLen,
		Unmatched:  unmatched,
		AddedWords: added,
	}, 1, vocabSize)
}
