package align

import "infoshield/internal/mdl"

// WildBounder is the batched form of WildConditionalLowerBound and
// WildDistanceLowerBound for the serving hot path: the document length and
// the (numTemplates, vocabSize)-dependent cost constants are hoisted once
// per probe, so evaluating the bound over a whole structure-of-arrays
// candidate batch is a tight loop of integer clamps and a handful of
// float operations — no math.Log2 per candidate.
//
// Both methods assume the template's SlotWords vector is an all-ones
// prefix (the serving invariant: every registered template's SlotWords is
// a prefix of one shared all-ones vector), and evaluate the exact same
// float expression tree as the originals via mdl.MatchCoster.CostOnes, so
// the returned bounds are bit-identical — pruning decisions cannot drift.
// TestWildBounderBitIdentical pins both methods against the originals.
type WildBounder struct {
	docLen int
	coster mdl.MatchCoster
}

// NewWildBounder hoists the per-probe constants for a document of docLen
// tokens matched against numTemplates templates over a vocabSize-word
// vocabulary.
func NewWildBounder(docLen, numTemplates, vocabSize int) WildBounder {
	return WildBounder{docLen: docLen, coster: mdl.NewMatchCoster(numTemplates, vocabSize)}
}

// Bound is WildConditionalLowerBound(refLen, docLen, overlap, ones[:slots],
// numTemplates, vocabSize) with the constants pre-hoisted.
func (b WildBounder) Bound(refLen, overlap, slots int) float64 {
	alignLen := refLen
	if b.docLen > alignLen {
		alignLen = b.docLen
	}
	maxMatches := overlap + slots
	if mn := min(refLen, b.docLen); maxMatches > mn {
		maxMatches = mn
	}
	unmatched := alignLen - maxMatches
	if unmatched < 0 {
		unmatched = 0
	}
	added := b.docLen - maxMatches
	if added < 0 {
		added = 0
	}
	return b.coster.CostOnes(alignLen, unmatched, added, slots)
}

// CostOnes exposes the hoisted mdl.MatchCoster for callers that apply
// their own clamps (the tier-0 bucket bound) or cost a finished alignment
// (the winner's exact cost) — same per-probe constants, same bit-exact
// expression tree as mdl.DataCostMatched over all-ones SlotWords.
func (b WildBounder) CostOnes(alignLen, unmatched, added, slots int) float64 {
	return b.coster.CostOnes(alignLen, unmatched, added, slots)
}

// DistBound is WildDistanceLowerBound(refLen, docLen, dist, ones[:slots],
// numTemplates, vocabSize) with the constants pre-hoisted.
func (b WildBounder) DistBound(refLen, dist, slots int) float64 {
	alignLen := refLen
	if b.docLen > alignLen {
		alignLen = b.docLen
	}
	maxDels := (dist - (b.docLen - refLen)) / 2
	added := dist - maxDels
	if added < 0 {
		added = 0
	}
	return b.coster.CostOnes(alignLen, dist, added, slots)
}
