package align

import "infoshield/internal/mdl"

// WildBitCap is the longest reference (constants + slots) the single-word
// bit-parallel wildcard distance handles: one template position per bit of
// a uint64. Templates are mined from documents and sit well under this in
// practice; longer references fall back to the full DP.
const WildBitCap = 64

// WildEqMasks builds the match-mask table for a wildcard reference:
// wildMask has bit i set when position i is a slot (matches any token),
// eqToks lists the distinct constant token ids ascending, and eqMasks[k]
// has bit i set when position i holds constant eqToks[k]. A document token
// c therefore matches reference position i iff bit i is set in
// wildMask | eqMasks[index of c], which is the Eq vector the bit-parallel
// recurrence consumes. len(ref) must be at most WildBitCap.
//
// The streaming detector precomputes this table once per template at
// registration (into arenas); this allocating form serves tests and
// callers without a pooling story.
func WildEqMasks(ref []int, wild []bool) (wildMask uint64, eqToks []int32, eqMasks []uint64) {
	for i, tok := range ref {
		if wild[i] {
			wildMask |= 1 << uint(i)
			continue
		}
		k := maskIdx(eqToks, tok)
		if k < len(eqToks) && eqToks[k] == int32(tok) {
			eqMasks[k] |= 1 << uint(i)
			continue
		}
		eqToks = append(eqToks, 0)
		eqMasks = append(eqMasks, 0)
		copy(eqToks[k+1:], eqToks[k:])
		copy(eqMasks[k+1:], eqMasks[k:])
		eqToks[k] = int32(tok)
		eqMasks[k] = 1 << uint(i)
	}
	return wildMask, eqToks, eqMasks
}

// maskIdx returns the insertion index of tok in the ascending eqToks —
// binary search kept loop-only so the probe hot path stays inline-friendly.
func maskIdx(eqToks []int32, tok int) int {
	lo, hi := 0, len(eqToks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(eqToks[mid]) < tok {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// WildDistanceMasked returns the unit-cost global alignment distance
// between a wildcard reference of length n — described by the mask table
// from WildEqMasks — and doc, in O(len(doc)) word operations and zero
// allocations. The value equals PairwiseWild(ref, wild, doc).Distance()
// exactly: wildcard positions cost 0 against any token, everything else is
// unit-cost Levenshtein.
//
// This is Myers' bit-parallel scheme in Hyyrö's global-distance form: the
// score register tracks cell D[n][j] while vertical delta vectors Pv/Mv
// (+1/−1 down column j) advance one document token per iteration. Two
// deviations from the search variant matter: the horizontal positive
// vector shifts in a 1 (the first row of the global DP is D[0][j] = j, so
// the boundary delta is always +1), and the score updates from the
// horizontal deltas at row n before the shift. Wildcards need no extra
// machinery — they are just rows whose Eq bit is set for every column,
// which the recurrence turns into free diagonal moves.
func WildDistanceMasked(n int, wildMask uint64, eqToks []int32, eqMasks []uint64, doc []int) int {
	if n == 0 {
		return len(doc) // insert everything
	}
	mask := ^uint64(0) >> uint(64-n)
	hb := uint64(1) << uint(n-1)
	pv, mv := mask, uint64(0)
	score := n
	for _, c := range doc {
		eq := wildMask
		if k := maskIdx(eqToks, c); k < len(eqToks) && int(eqToks[k]) == c {
			eq |= eqMasks[k]
		}
		eq &= mask
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&hb != 0 {
			score++
		} else if mh&hb != 0 {
			score--
		}
		ph = ph<<1 | 1 // global form: row-0 boundary contributes +1 every column
		mh <<= 1
		pv = (mh | ^(xv | ph)) & mask
		mv = ph & xv & mask
	}
	return score
}

// WildDistance is the convenience form of WildDistanceMasked for callers
// without a precomputed mask table. len(ref) must be at most WildBitCap.
func WildDistance(ref []int, wild []bool, doc []int) int {
	wildMask, eqToks, eqMasks := WildEqMasks(ref, wild)
	return WildDistanceMasked(len(ref), wildMask, eqToks, eqMasks, doc)
}

// WildDistanceLowerBound turns the exact wildcard edit distance into an
// admissible lower bound on the matched data cost — tighter than
// WildConditionalLowerBound because dist counts every unmatched operation
// of an optimal alignment, not just the token-multiset deficit.
//
// Admissibility (bound ≤ the cost of the alignment PairwiseWild returns):
// that alignment also minimizes S+I+D (its scores are the unit-cost DP's),
// so its unmatched count e = S+I+D equals dist exactly, and its length
// l̂ = refLen + I ≥ max(refLen, docLen). Its added words are u = S+I =
// dist − D, and D is bounded by the length identity I − D = docLen −
// refLen: substituting into S + I + D = dist with S ≥ 0 gives
// D ≤ ⌊(dist − (docLen − refLen)) / 2⌋, hence u ≥ dist − that floor
// (dist ≥ |docLen − refLen| keeps the numerator nonnegative). Every term
// of mdl.DataCostMatched is nondecreasing in (l̂, e, u), and the bound
// evaluates the identical expression tree at the componentwise minima with
// the same SlotWords slice, so the inequality holds in floating point,
// not just exact arithmetic.
func WildDistanceLowerBound(refLen, docLen, dist int, slotWords []int, numTemplates, vocabSize int) float64 {
	alignLen := refLen
	if docLen > alignLen {
		alignLen = docLen
	}
	maxDels := (dist - (docLen - refLen)) / 2
	added := dist - maxDels
	if added < 0 {
		added = 0
	}
	return mdl.DataCostMatched(mdl.AlignStats{
		AlignLen:   alignLen,
		Unmatched:  dist,
		AddedWords: added,
		SlotWords:  slotWords,
	}, numTemplates, vocabSize)
}
