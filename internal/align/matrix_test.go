package align

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := &Matrix{Rows: [][]int{
		{1, 2, Gap, 3},
		{1, 9, 7, 3},
	}}
	if m.NumRows() != 2 || m.NumCols() != 4 {
		t.Fatalf("shape %dx%d", m.NumRows(), m.NumCols())
	}
	tok, cnt, ok := m.Majority(0)
	if !ok || tok != 1 || cnt != 2 {
		t.Errorf("Majority(0) = %d,%d,%v", tok, cnt, ok)
	}
	tok, cnt, ok = m.Majority(1)
	if !ok || cnt != 1 || tok != 2 { // tie breaks toward smaller id
		t.Errorf("Majority(1) = %d,%d,%v", tok, cnt, ok)
	}
	if got := m.Sequence(0); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("Sequence(0) = %v", got)
	}
	if ok, reason := m.Validate(); !ok {
		t.Errorf("Validate: %s", reason)
	}
}

func TestMatrixValidateCatchesRagged(t *testing.T) {
	m := &Matrix{Rows: [][]int{{1, 2}, {1}}}
	if ok, _ := m.Validate(); ok {
		t.Error("ragged matrix should fail validation")
	}
	m = &Matrix{Rows: [][]int{{1, 2}, {Gap, Gap}}}
	if ok, _ := m.Validate(); ok {
		t.Error("all-gap row should fail validation")
	}
}

func TestMatrixColumnCountsIgnoresGaps(t *testing.T) {
	m := &Matrix{Rows: [][]int{{Gap}, {5}, {5}, {7}}}
	counts := m.ColumnCounts(0)
	if counts[5] != 2 || counts[7] != 1 || len(counts) != 2 {
		t.Errorf("counts = %v", counts)
	}
}

func TestStarIdenticalSequences(t *testing.T) {
	seq := []int{3, 1, 4, 1, 5}
	m := Star([][]int{seq, seq, seq})
	if m.NumCols() != len(seq) {
		t.Fatalf("cols = %d", m.NumCols())
	}
	for d := range m.Rows {
		if got := m.Sequence(d); !reflect.DeepEqual(got, seq) {
			t.Errorf("row %d = %v", d, got)
		}
	}
}

func TestStarWithInsertion(t *testing.T) {
	hub := []int{1, 2, 3}
	ins := []int{1, 2, 9, 3} // inserts 9 before position 2
	m := Star([][]int{hub, ins})
	if ok, reason := m.Validate(); !ok {
		t.Fatalf("Validate: %s", reason)
	}
	if m.NumCols() != 4 {
		t.Errorf("cols = %d, want 4", m.NumCols())
	}
	if got := m.Sequence(0); !reflect.DeepEqual(got, hub) {
		t.Errorf("hub row = %v", got)
	}
	if got := m.Sequence(1); !reflect.DeepEqual(got, ins) {
		t.Errorf("ins row = %v", got)
	}
}

func TestStarEmptyInput(t *testing.T) {
	m := Star(nil)
	if m.NumRows() != 0 {
		t.Errorf("rows = %d", m.NumRows())
	}
}

// Property: Star preserves every sequence exactly (gaps removed) and
// produces a rectangular matrix.
func TestStarPreservesSequences(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 1
		seqs := make([][]int, n)
		for i := range seqs {
			seqs[i] = randSeq(rng, 12, 5)
			if len(seqs[i]) == 0 {
				seqs[i] = []int{0}
			}
		}
		m := Star(seqs)
		if ok, _ := m.Validate(); !ok {
			return false
		}
		for i := range seqs {
			if !reflect.DeepEqual(m.Sequence(i), seqs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
