package align

// PairwiseWildScratch is PairwiseWild with a caller-owned Scratch: the DP
// table is reused across calls and no edit script is materialized. The
// returned Alignment has nil Edits but identical Matches / Subs / Inss /
// Dels — same scores, same match > sub > del > ins tie-break order — so
// every MDL cost derived from the counts is bit-identical to
// PairwiseWild's. The streaming detector runs one of these per surviving
// template per probe; a Scratch is owned by exactly one goroutine at a
// time (the batched serve path threads one per worker).
func PairwiseWildScratch(ref []int, wild []bool, doc []int, sc *Scratch) Alignment {
	n, m := len(ref), len(doc)
	width := m + 1
	dp := sc.table((n + 1) * width)
	for j := 0; j <= m; j++ {
		dp[j] = int32(j)
	}
	matches := func(i, j int) bool {
		return wild[i-1] || ref[i-1] == doc[j-1]
	}
	for i := 1; i <= n; i++ {
		row, prev := dp[i*width:(i+1)*width], dp[(i-1)*width:i*width]
		row[0] = int32(i)
		for j := 1; j <= m; j++ {
			diag := prev[j-1]
			if !matches(i, j) {
				diag++
			}
			best := diag
			if v := prev[j] + 1; v < best { // delete ref[i-1]
				best = v
			}
			if v := row[j-1] + 1; v < best { // insert doc[j-1]
				best = v
			}
			row[j] = best
		}
	}
	var a Alignment
	i, j := n, m
	for i > 0 || j > 0 {
		cur := dp[i*width+j]
		switch {
		case i > 0 && j > 0 && matches(i, j) && cur == dp[(i-1)*width+j-1]:
			a.Matches++
			i, j = i-1, j-1
		case i > 0 && j > 0 && cur == dp[(i-1)*width+j-1]+1 && !matches(i, j):
			a.Subs++
			i, j = i-1, j-1
		case i > 0 && cur == dp[(i-1)*width+j]+1:
			a.Dels++
			i--
		default: // j > 0
			a.Inss++
			j--
		}
	}
	return a
}
