package align

// PairwiseWildBanded is PairwiseWildScratch restricted to a Ukkonen-style
// diagonal band, for callers that already know the unit-cost distance (the
// serving path's bit-parallel WildDistanceMasked runs before every exact
// alignment): with band half-width h = dist the optimal path fits inside
// the band — every intermediate diagonal deviation is bounded by the
// insertions/deletions spent so far — so the O(n·m) table shrinks to
// O(n·dist) while the result stays op-for-op identical to the full DP.
//
// dist seeds the band and is typically the exact distance; any
// non-negative value is safe. The band is widened and the attempt rerun
// whenever the equality certificate below fails (only possible when dist
// underestimates the true distance), and retries reports how many
// widenings occurred — zero whenever dist was exact. Attempts whose band
// would be at least as wide as the full table (2h ≥ m) delegate to the
// full PairwiseWildScratch instead.
//
// Equality argument (FuzzWildBanded pins it op-for-op against the full
// DP). Write B for the banded table (minimum over paths confined to
// |j−i| ≤ h) and F for the full table; δ = j−i. Two facts:
//
//  1. A path that leaves the band before reaching (i, j) spends ≥ h+1
//     indels reaching deviation ±(h+1) and ≥ h+1−|δ| returning, so it
//     costs ≥ 2h+2−|δ| — hence B(i,j) ≤ 2h+1−|δ| forces B(i,j) = F(i,j).
//  2. On the traceback path from (n,m), cur = B(n,m) − cost(path so far)
//     and |δ| ≤ |m−n| + that same cost, so cur + |δ| ≤ B(n,m) + |m−n|.
//
// The accept check B(n,m) + |m−n| ≤ 2h therefore guarantees (a) the
// corner is exact (fact 1 at δ = m−n), and (b) at every traceback cell
// cur + |δ| ≤ 2h. For each neighbor the full traceback consults (diag at
// the same δ, up at δ+1), either its banded value equals F and the
// equality tests agree trivially, or its F is achieved by a band-exiting
// path, so both its F and its banded value are ≥ 2h+2−|δ|−1 > cur + 1 ≥
// every value the tests compare against — the tests fail on both sides.
// Out-of-band neighbors fail the same way (F ≥ h+1 ≥ cur+1 when δ = h).
// Every decision of the match > sub > del > ins switch is thus identical
// to the full DP's, and so are the returned operation counts.
func PairwiseWildBanded(ref []int, wild []bool, doc []int, dist int, sc *Scratch) (a Alignment, retries int) {
	n, m := len(ref), len(doc)
	h := dist
	if d := m - n; d > h {
		h = d
	}
	if d := n - m; d > h {
		h = d
	}
	for {
		if 2*h >= m {
			// The band is at least as wide as the full table (and always
			// is once h reaches max(n, m)): run the reference DP directly.
			return PairwiseWildScratch(ref, wild, doc, sc), retries
		}
		if a, ok := bandedWildAttempt(ref, wild, doc, h, sc); ok {
			return a, retries
		}
		if h == 0 {
			h = 1
		} else {
			h *= 2
		}
		retries++
	}
}

// bandedWildAttempt runs one banded fill + traceback at half-width h.
// Rows store the band compactly: row i covers j ∈ [max(0, i−h),
// min(m, i+h)] at column j−i+h, width 2h+1. Every in-band cell's
// recurrence neighbors are themselves in band and filled (diag shares the
// cell's column, up/left are gated by the column bounds), so no sentinel
// values are needed. ok is the equality certificate described on
// PairwiseWildBanded; on false the caller widens and retries.
func bandedWildAttempt(ref []int, wild []bool, doc []int, h int, sc *Scratch) (a Alignment, ok bool) {
	n, m := len(ref), len(doc)
	w := 2*h + 1
	dp := sc.table((n + 1) * w)
	for j := 0; j <= m && j <= h; j++ {
		dp[j+h] = int32(j)
	}
	for i := 1; i <= n; i++ {
		row, prev := dp[i*w:(i+1)*w], dp[(i-1)*w:i*w]
		jlo := i - h
		if jlo <= 0 {
			row[h-i] = int32(i) // column 0 is all deletions
			jlo = 1
		}
		jhi := i + h
		if jhi > m {
			jhi = m
		}
		ri, wi := ref[i-1], wild[i-1]
		for j := jlo; j <= jhi; j++ {
			c := j - i + h
			diag := prev[c]
			if !(wi || ri == doc[j-1]) {
				diag++
			}
			best := diag
			if c+1 < w {
				if v := prev[c+1] + 1; v < best { // delete ref[i-1]
					best = v
				}
			}
			if c > 0 {
				if v := row[c-1] + 1; v < best { // insert doc[j-1]
					best = v
				}
			}
			row[c] = best
		}
	}
	dm := m - n
	if dm < 0 {
		dm = -dm
	}
	if int(dp[n*w+(m-n+h)])+dm > 2*h {
		return Alignment{}, false
	}
	i, j := n, m
	for i > 0 || j > 0 {
		c := j - i + h
		cur := dp[i*w+c]
		match := i > 0 && j > 0 && (wild[i-1] || ref[i-1] == doc[j-1])
		switch {
		case match && cur == dp[(i-1)*w+c]:
			a.Matches++
			i, j = i-1, j-1
		case i > 0 && j > 0 && !match && cur == dp[(i-1)*w+c]+1:
			a.Subs++
			i, j = i-1, j-1
		case i > 0 && c+1 < w && cur == dp[(i-1)*w+c+1]+1:
			a.Dels++
			i--
		default: // j > 0, and the insert target (i, j-1) is in band
			if c == 0 {
				// Unreachable when the accept check holds (the cell's value
				// must then come from an in-band source, and one of the
				// cases above would have fired); kept as a defensive widen.
				return Alignment{}, false
			}
			a.Inss++
			j--
		}
	}
	return a, true
}
