package align

import (
	"math"
	"math/rand"
	"testing"
)

// TestWildBounderBitIdentical pins WildBounder.Bound and .DistBound to
// the exact bit patterns of WildConditionalLowerBound and
// WildDistanceLowerBound over all-ones SlotWords vectors — the serving
// invariant. Bit equality (not ApproxEq) is the contract: the batched
// bound loop must make byte-identical pruning decisions.
func TestWildBounderBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ones := make([]int, 32)
	for i := range ones {
		ones[i] = 1
	}
	for it := 0; it < 20000; it++ {
		refLen := 1 + rng.Intn(96)
		docLen := rng.Intn(96)
		slots := rng.Intn(min(refLen, len(ones)) + 1)
		overlap := rng.Intn(refLen + 2)
		numT := 1 + rng.Intn(200000)
		vocab := 2 + rng.Intn(5000000)
		b := NewWildBounder(docLen, numT, vocab)

		want := WildConditionalLowerBound(refLen, docLen, overlap, ones[:slots], numT, vocab)
		got := b.Bound(refLen, overlap, slots)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Bound(ref=%d doc=%d ov=%d slots=%d t=%d V=%d) = %v, want %v",
				refLen, docLen, overlap, slots, numT, vocab, got, want)
		}

		// dist must be a feasible distance: at least |docLen - refLen|.
		dist := abs(docLen-refLen) + rng.Intn(16)
		want = WildDistanceLowerBound(refLen, docLen, dist, ones[:slots], numT, vocab)
		got = b.DistBound(refLen, dist, slots)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("DistBound(ref=%d doc=%d dist=%d slots=%d t=%d V=%d) = %v, want %v",
				refLen, docLen, dist, slots, numT, vocab, got, want)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
