package align

import (
	"math/rand"
	"sort"
	"testing"
)

// medianKillerInput builds the classic anti-quicksort permutation for
// middle-pivot partitioning: values arranged so every partition is
// maximally unbalanced. Combined with large descending runs it drives the
// pre-introsort quicksort toward its quadratic worst case.
func medianKillerInput(n int) []int {
	a := make([]int, n)
	// Interleave a descending run with an ascending one: the middle
	// pivot keeps landing near an extreme.
	for i := range a {
		if i%2 == 0 {
			a[i] = n - i
		} else {
			a[i] = i
		}
	}
	return a
}

func TestSortIntsMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := [][]int{
		nil,
		{1},
		{2, 1},
		medianKillerInput(10_000),
	}
	// Already-sorted, reverse-sorted, and constant inputs at sizes around
	// the insertion-sort cutoff and well past it.
	for _, n := range []int{23, 24, 25, 100, 5000} {
		asc := make([]int, n)
		desc := make([]int, n)
		flat := make([]int, n)
		random := make([]int, n)
		for i := 0; i < n; i++ {
			asc[i] = i
			desc[i] = n - i
			flat[i] = 42
			random[i] = rng.Intn(n / 2)
		}
		cases = append(cases, asc, desc, flat, random)
	}
	for ci, in := range cases {
		got := append([]int(nil), in...)
		want := append([]int(nil), in...)
		SortInts(got)
		sort.Ints(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("case %d (len %d): sortInts diverges from sort.Ints at %d: %d vs %d",
					ci, len(in), i, got[i], want[i])
			}
		}
	}
}

// TestSortIntsAdversarialDepth checks the heap-sort fallback engages
// instead of blowing the stack or going quadratic: a large median-killer
// input must sort correctly (the old quicksort recursed once per element
// on inputs like these).
func TestSortIntsAdversarialDepth(t *testing.T) {
	a := medianKillerInput(200_000)
	SortInts(a)
	for i := 1; i < len(a); i++ {
		if a[i-1] > a[i] {
			t.Fatalf("not sorted at %d: %d > %d", i, a[i-1], a[i])
		}
	}
}

// FuzzSortInts cross-checks sortInts against the standard library on
// arbitrary byte-derived inputs — including the adversarial shapes the
// depth-limit fallback exists for.
func FuzzSortInts(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 2, 1})
	desc := make([]byte, 256)
	for i := range desc {
		desc[i] = byte(255 - i)
	}
	f.Add(desc)
	f.Fuzz(func(t *testing.T, data []byte) {
		in := make([]int, len(data))
		for i, b := range data {
			in[i] = int(b) - 128
		}
		got := append([]int(nil), in...)
		want := append([]int(nil), in...)
		SortInts(got)
		sort.Ints(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("diverges from sort.Ints at %d: %d vs %d", i, got[i], want[i])
			}
		}
	})
}

// TestConditionalCostScratchMatches asserts the stats-only scratch path
// returns bit-identical costs to the edit-script path across random
// sequence pairs — the invariant that lets the fine pass swap it in.
func TestConditionalCostScratchMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var sc Scratch
	for trial := 0; trial < 500; trial++ {
		n, m := rng.Intn(40), rng.Intn(40)
		ref := make([]int, n)
		doc := make([]int, m)
		for i := range ref {
			ref[i] = rng.Intn(12)
		}
		for i := range doc {
			doc[i] = rng.Intn(12)
		}
		a := Pairwise(ref, doc)
		matches, subs, inss, dels := pairwiseStats(ref, doc, &sc)
		if matches != a.Matches || subs != a.Subs || inss != a.Inss || dels != a.Dels {
			t.Fatalf("trial %d: stats (%d,%d,%d,%d) != Pairwise (%d,%d,%d,%d)",
				trial, matches, subs, inss, dels, a.Matches, a.Subs, a.Inss, a.Dels)
		}
	}
}
