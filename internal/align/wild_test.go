package align

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"infoshield/internal/mdl"
)

func TestPairwiseWildMatchesAnywhere(t *testing.T) {
	ref := []int{1, 2, 3}
	wild := []bool{false, true, false}
	// Slot position matches any token at zero cost.
	a := PairwiseWild(ref, wild, []int{1, 99, 3})
	if a.Distance() != 0 || a.Matches != 3 {
		t.Errorf("wild match: %+v", a)
	}
	// Non-slot mismatch still costs.
	a = PairwiseWild(ref, wild, []int{7, 99, 3})
	if a.Subs != 1 || a.Distance() != 1 {
		t.Errorf("non-slot sub: %+v", a)
	}
}

func TestPairwiseWildNoWildcardsEqualsPairwise(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := randSeq(rng, 12, 5)
		doc := randSeq(rng, 12, 5)
		wild := make([]bool, len(ref))
		a := Pairwise(ref, doc)
		b := PairwiseWild(ref, wild, doc)
		return a.Distance() == b.Distance() &&
			a.Matches == b.Matches && a.Len() == b.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: adding wildcards never increases the distance.
func TestPairwiseWildMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := randSeq(rng, 12, 5)
		doc := randSeq(rng, 12, 5)
		if len(ref) == 0 {
			return true
		}
		wild := make([]bool, len(ref))
		base := PairwiseWild(ref, wild, doc).Distance()
		wild[rng.Intn(len(wild))] = true
		return PairwiseWild(ref, wild, doc).Distance() <= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the edit script still reconstructs the document.
func TestPairwiseWildScriptReconstructs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := randSeq(rng, 10, 4)
		doc := randSeq(rng, 10, 4)
		wild := make([]bool, len(ref))
		for i := range wild {
			wild[i] = rng.Intn(3) == 0
		}
		a := PairwiseWild(ref, wild, doc)
		got := reconstruct(a.Edits)
		return reflect.DeepEqual(got, doc) || (len(doc) == 0 && len(got) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the stats-only pooled wildcard aligner reproduces
// PairwiseWild's operation counts exactly — same scores, same tie-break —
// so every MDL cost derived from it is bit-identical.
func TestPairwiseWildScratchMatchesPairwiseWild(t *testing.T) {
	var sc Scratch
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := randSeq(rng, 14, 5)
		doc := randSeq(rng, 14, 5)
		wild := make([]bool, len(ref))
		for i := range wild {
			wild[i] = rng.Intn(3) == 0
		}
		want := PairwiseWild(ref, wild, doc)
		got := PairwiseWildScratch(ref, wild, doc, &sc)
		return got.Matches == want.Matches && got.Subs == want.Subs &&
			got.Inss == want.Inss && got.Dels == want.Dels
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the wildcard-template lower bound never exceeds the exact
// matched cost computed from the PairwiseWild alignment — the invariant
// that makes the streaming detector's DP pruning verdict-preserving.
func TestWildConditionalLowerBoundAdmissible(t *testing.T) {
	V := 1 << 12
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := randSeq(rng, 15, 6)
		doc := randSeq(rng, 15, 6)
		if len(ref) == 0 || len(doc) == 0 {
			return true
		}
		wild := make([]bool, len(ref))
		slots := 0
		for i := range wild {
			if rng.Intn(3) == 0 {
				wild[i] = true
				slots++
			}
		}
		// Constant-token multiset overlap: slots excluded from the counts.
		consts := make([]int, 0, len(ref))
		for i, tok := range ref {
			if !wild[i] {
				consts = append(consts, tok)
			}
		}
		slotWords := make([]int, slots)
		for i := range slotWords {
			slotWords[i] = 1
		}
		numT := 1 + rng.Intn(8)
		a := PairwiseWild(ref, wild, doc)
		exact := mdl.DataCostMatched(mdl.AlignStats{
			AlignLen:   a.Len(),
			Unmatched:  a.Distance(),
			AddedWords: a.Subs + a.Inss,
			SlotWords:  slotWords,
		}, numT, V)
		bound := WildConditionalLowerBound(len(ref), len(doc),
			Overlap(TokenCounts(consts), doc), slotWords, numT, V)
		return bound <= exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

func TestOverlapSortedMatchesMapOverlap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSeq(rng, 20, 6)
		b := randSeq(rng, 20, 6)
		want := Overlap(TokenCounts(a), b)
		got := OverlapSorted(SortedCopy(a), SortedCopy(b))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestSortedCopy(t *testing.T) {
	in := []int{5, 1, 4, 1, 3, 9, 2, 6, 8, 7, 0, 10, 30, 20, 15, 12, 11, 25, 24, 23, 22, 21, 19, 18, 17, 16, 14, 13}
	got := SortedCopy(in)
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("not sorted at %d: %v", i, got)
		}
	}
	if in[0] != 5 {
		t.Error("SortedCopy mutated its input")
	}
	if len(got) != len(in) {
		t.Errorf("length changed: %d", len(got))
	}
}

// Property: the conditional lower bound never exceeds the true cost.
func TestConditionalLowerBoundAdmissible(t *testing.T) {
	V := 1 << 12
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := randSeq(rng, 15, 6)
		doc := randSeq(rng, 15, 6)
		if len(ref) == 0 || len(doc) == 0 {
			return true
		}
		bound := ConditionalLowerBound(len(ref), len(doc),
			Overlap(TokenCounts(ref), doc), V)
		return bound <= ConditionalCost(ref, doc, V)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
