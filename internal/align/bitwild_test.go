package align

import (
	"math/rand"
	"testing"
	"testing/quick"

	"infoshield/internal/mdl"
)

// Property: the bit-parallel distance equals the DP's distance for every
// reference up to WildBitCap — the invariant that lets the streaming
// matcher use WildDistanceMasked as a pre-filter without changing any
// verdict.
func TestWildDistanceMatchesDP(t *testing.T) {
	var sc Scratch
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := randSeq(rng, WildBitCap, 7)
		doc := randSeq(rng, 80, 7)
		wild := make([]bool, len(ref))
		for i := range wild {
			wild[i] = rng.Intn(4) == 0
		}
		want := PairwiseWildScratch(ref, wild, doc, &sc).Distance()
		return WildDistance(ref, wild, doc) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWildDistanceEdges(t *testing.T) {
	var sc Scratch
	cases := []struct {
		name string
		ref  []int
		wild []bool
		doc  []int
	}{
		{"empty ref", nil, nil, []int{1, 2, 3}},
		{"empty doc", []int{1, 2, 3}, []bool{false, true, false}, nil},
		{"both empty", nil, nil, nil},
		{"all wild", []int{0, 0, 0}, []bool{true, true, true}, []int{9, 9}},
		{"single", []int{5}, []bool{false}, []int{5}},
		{"repeated token", []int{4, 4, 4, 4}, []bool{false, false, false, false}, []int{4, 4}},
	}
	// Full-width reference: bit 63 (the score row) must behave like any other.
	full := make([]int, WildBitCap)
	fullWild := make([]bool, WildBitCap)
	for i := range full {
		full[i] = i % 5
		fullWild[i] = i%7 == 0
	}
	cases = append(cases,
		struct {
			name string
			ref  []int
			wild []bool
			doc  []int
		}{"width 64", full, fullWild, []int{0, 1, 2, 3, 4, 0, 1, 2, 9, 9, 3}})
	for _, c := range cases {
		want := PairwiseWildScratch(c.ref, c.wild, c.doc, &sc).Distance()
		if got := WildDistance(c.ref, c.wild, c.doc); got != want {
			t.Errorf("%s: WildDistance = %d, want %d", c.name, got, want)
		}
	}
}

func TestWildEqMasksTable(t *testing.T) {
	ref := []int{7, 3, 7, 9, 3}
	wild := []bool{false, false, true, false, false}
	wildMask, eqToks, eqMasks := WildEqMasks(ref, wild)
	if wildMask != 1<<2 {
		t.Fatalf("wildMask = %b", wildMask)
	}
	if len(eqToks) != 3 || eqToks[0] != 3 || eqToks[1] != 7 || eqToks[2] != 9 {
		t.Fatalf("eqToks = %v, want ascending [3 7 9]", eqToks)
	}
	if eqMasks[0] != 1<<1|1<<4 || eqMasks[1] != 1<<0 || eqMasks[2] != 1<<3 {
		t.Fatalf("eqMasks = %b", eqMasks)
	}
}

// fuzzWildInput decodes a fuzz byte string into a bounded (ref, wild, doc)
// triple over a small alphabet, so the fuzzer explores repeated tokens and
// wildcard placements rather than huge random ids.
func fuzzWildInput(data []byte) (ref []int, wild []bool, doc []int) {
	if len(data) == 0 {
		return nil, nil, nil
	}
	n := int(data[0]) % (WildBitCap + 1)
	data = data[1:]
	for i := 0; i < n && i < len(data); i++ {
		b := data[i]
		ref = append(ref, int(b%11))
		wild = append(wild, b&0x80 != 0)
	}
	if len(ref) < len(data) {
		for _, b := range data[len(ref):] {
			if len(doc) >= 96 {
				break
			}
			doc = append(doc, int(b%11))
		}
	}
	return ref, wild, doc
}

// FuzzWildBitParallel pins the bit-parallel wildcard distance against the
// exact DP verdict-for-verdict: any divergence means the pre-filter could
// mis-prune, so equality is the whole contract.
func FuzzWildBitParallel(f *testing.F) {
	f.Add([]byte("\x05abcdeabcde"))
	f.Add([]byte("\x00plaindoc"))
	f.Add([]byte{64, 0x80, 0x81, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		ref, wild, doc := fuzzWildInput(data)
		var sc Scratch
		want := PairwiseWildScratch(ref, wild, doc, &sc).Distance()
		if got := WildDistance(ref, wild, doc); got != want {
			t.Fatalf("WildDistance = %d, DP distance = %d (ref=%v wild=%v doc=%v)",
				got, want, ref, wild, doc)
		}
	})
}

// FuzzWildLowerBoundAdmissible checks both serving-path lower bounds —
// the overlap bound and the exact-distance refinement — never exceed the
// exact matched cost on random template/document pairs. Admissibility is
// what makes pruning verdict-preserving, so a single counterexample is a
// correctness bug, not an accuracy regression.
func FuzzWildLowerBoundAdmissible(f *testing.F) {
	f.Add([]byte("\x08tmplwordstmplwordsdocdocdoc"))
	f.Add([]byte{12, 'a', 0x80 | 'b', 'c', 'a', 0x80 | 'd', 'e', 'f', 'a', 'b', 'c', 'd', 'e', 'x', 'y', 'z', 'a', 'b'})
	f.Fuzz(func(t *testing.T, data []byte) {
		ref, wild, doc := fuzzWildInput(data)
		if len(ref) == 0 || len(doc) == 0 {
			t.Skip("degenerate pair")
		}
		consts := make([]int, 0, len(ref))
		slots := 0
		for i, tok := range ref {
			if wild[i] {
				slots++
			} else {
				consts = append(consts, tok)
			}
		}
		slotWords := make([]int, slots)
		for i := range slotWords {
			slotWords[i] = 1
		}
		const numT, V = 5, 4096
		var sc Scratch
		a := PairwiseWildScratch(ref, wild, doc, &sc)
		exact := mdl.DataCostMatched(mdl.AlignStats{
			AlignLen:   a.Len(),
			Unmatched:  a.Distance(),
			AddedWords: a.Subs + a.Inss,
			SlotWords:  slotWords,
		}, numT, V)
		overlap := Overlap(TokenCounts(consts), doc)
		if lb := WildConditionalLowerBound(len(ref), len(doc), overlap, slotWords, numT, V); lb > exact {
			t.Fatalf("overlap bound %v exceeds exact cost %v (ref=%v wild=%v doc=%v)",
				lb, exact, ref, wild, doc)
		}
		dist := WildDistance(ref, wild, doc)
		if lb := WildDistanceLowerBound(len(ref), len(doc), dist, slotWords, numT, V); lb > exact {
			t.Fatalf("distance bound %v exceeds exact cost %v (dist=%d ref=%v wild=%v doc=%v)",
				lb, exact, dist, ref, wild, doc)
		}
	})
}
