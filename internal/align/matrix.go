package align

// Matrix is a multiple sequence alignment: one row per document, one
// column per alignment position; cells hold token ids or Gap. Both the
// POA aligner and the star aligner produce this shape, and everything in
// InfoShield-Fine past the alignment step (consensus search, slot
// detection, encoding) consumes it — making Fine MSA-agnostic, as the
// paper claims.
type Matrix struct {
	Rows [][]int // Rows[d][c] = token id or Gap
}

// NumRows returns the number of aligned documents.
func (m *Matrix) NumRows() int { return len(m.Rows) }

// NumCols returns the number of alignment columns (0 for an empty matrix).
func (m *Matrix) NumCols() int {
	if len(m.Rows) == 0 {
		return 0
	}
	return len(m.Rows[0])
}

// ColumnCounts returns, for column c, a map token→occurrences (gaps are
// not counted).
func (m *Matrix) ColumnCounts(c int) map[int]int {
	counts := make(map[int]int)
	for _, row := range m.Rows {
		if t := row[c]; t != Gap {
			counts[t]++
		}
	}
	return counts
}

// Majority returns the most frequent non-gap token of column c and its
// count. Ties break toward the smaller token id. ok is false for an
// all-gap column.
func (m *Matrix) Majority(c int) (token, count int, ok bool) {
	token, count = Gap, 0
	for t, n := range m.ColumnCounts(c) {
		if n > count || (n == count && t < token) {
			token, count = t, n
		}
	}
	return token, count, count > 0
}

// Validate checks structural invariants: rectangular shape and no
// all-gap rows. It returns false with a reason when violated; tests use it.
func (m *Matrix) Validate() (bool, string) {
	cols := m.NumCols()
	for i, row := range m.Rows {
		if len(row) != cols {
			return false, "ragged rows"
		}
		allGap := true
		for _, t := range row {
			if t != Gap {
				allGap = false
				break
			}
		}
		if allGap && cols > 0 {
			return false, "all-gap row"
		}
		_ = i
	}
	return true, ""
}

// Sequence reconstructs row d's original token sequence (gaps removed).
func (m *Matrix) Sequence(d int) []int {
	var seq []int
	for _, t := range m.Rows[d] {
		if t != Gap {
			seq = append(seq, t)
		}
	}
	return seq
}

// Star builds a star MSA: every sequence is pairwise-aligned to the first
// (the hub), and the pairwise alignments are merged column-wise with the
// usual "once a gap, always a gap" rule. Cheaper but cruder than POA; kept
// as the ablation alternative.
func Star(seqs [][]int) *Matrix {
	if len(seqs) == 0 {
		return &Matrix{}
	}
	hub := seqs[0]
	n := len(hub)
	// insBefore[i] = max tokens any sequence inserts before hub position i
	// (i == n means trailing insertions).
	insBefore := make([]int, n+1)
	aligns := make([]Alignment, len(seqs))
	for s := 1; s < len(seqs); s++ {
		a := Pairwise(hub, seqs[s])
		aligns[s] = a
		run, at := 0, 0
		flush := func() {
			if run > insBefore[at] {
				insBefore[at] = run
			}
			run = 0
		}
		for _, e := range a.Edits {
			if e.Op == Ins {
				if run == 0 {
					at = e.RefPos
				}
				run++
				continue
			}
			flush()
		}
		flush()
	}
	// Column layout: [ins block 0][hub 0][ins block 1][hub 1]...[ins block n]
	colOfHub := make([]int, n)
	insStart := make([]int, n+1)
	col := 0
	for i := 0; i <= n; i++ {
		insStart[i] = col
		col += insBefore[i]
		if i < n {
			colOfHub[i] = col
			col++
		}
	}
	total := col
	mat := &Matrix{Rows: make([][]int, len(seqs))}
	for s := range seqs {
		row := make([]int, total)
		for c := range row {
			row[c] = Gap
		}
		if s == 0 {
			for i, t := range hub {
				row[colOfHub[i]] = t
			}
		} else {
			insCount := make([]int, n+1)
			for _, e := range aligns[s].Edits {
				switch e.Op {
				case Match, Sub:
					row[colOfHub[e.RefPos]] = e.Token
				case Ins:
					row[insStart[e.RefPos]+insCount[e.RefPos]] = e.Token
					insCount[e.RefPos]++
				case Del:
					// leave gap at the hub column
				}
			}
		}
		mat.Rows[s] = row
	}
	return mat
}
