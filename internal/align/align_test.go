package align

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPairwiseIdentical(t *testing.T) {
	s := []int{1, 2, 3, 4}
	a := Pairwise(s, s)
	if a.Distance() != 0 || a.Matches != 4 {
		t.Errorf("identical alignment: %+v", a)
	}
	if a.Len() != 4 {
		t.Errorf("Len = %d", a.Len())
	}
}

func TestPairwiseEmpty(t *testing.T) {
	a := Pairwise(nil, []int{1, 2})
	if a.Inss != 2 || a.Distance() != 2 {
		t.Errorf("empty ref: %+v", a)
	}
	a = Pairwise([]int{1, 2}, nil)
	if a.Dels != 2 {
		t.Errorf("empty doc: %+v", a)
	}
	a = Pairwise(nil, nil)
	if a.Len() != 0 {
		t.Errorf("both empty: %+v", a)
	}
}

func TestPairwiseSubstitution(t *testing.T) {
	a := Pairwise([]int{1, 2, 3}, []int{1, 9, 3})
	if a.Subs != 1 || a.Matches != 2 || a.Distance() != 1 {
		t.Errorf("sub case: %+v", a)
	}
	if a.Edits[1].Op != Sub || a.Edits[1].Token != 9 || a.Edits[1].RefPos != 1 {
		t.Errorf("edit script: %+v", a.Edits)
	}
}

// The paper's Doc #4 vs T1 example: one deletion, one insertion, one
// substitution relative to the consensus word sequence.
func TestPairwisePaperDoc4(t *testing.T) {
	// T1:   this is a great *    and the * dollar price is    great
	// doc4: this is   great blue pen and the 3 dollar price is so good
	// Using ids: this=0 is=1 a=2 great=3 soap=4 and=5 the=6 N5=7 dollar=8
	// price=9 blue=10 pen=11 N3=12 so=13 good=14
	ref := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 3}
	doc := []int{0, 1, 3, 10, 11, 5, 6, 12, 8, 9, 1, 13, 14}
	a := Pairwise(ref, doc)
	// Optimal: delete "a", sub soap→{blue,pen} needs sub+ins, sub 5→3,
	// ins "so", sub great→good: distance 6 total (del+ins+ins+3 subs)...
	// NW finds the minimum; just assert the distance equals the DP value
	// recomputed by brute force below and that counts are consistent.
	if got := a.Matches + a.Subs; got != min(len(ref), len(doc)) && a.Distance() == 0 {
		t.Errorf("inconsistent alignment: %+v", a)
	}
	if a.Matches+a.Subs+a.Dels != len(ref) {
		t.Errorf("ref coverage: %+v", a)
	}
	if a.Matches+a.Subs+a.Inss != len(doc) {
		t.Errorf("doc coverage: %+v", a)
	}
}

// reconstruct applies the edit script to verify it reproduces doc.
func reconstruct(edits []Edit) []int {
	var out []int
	for _, e := range edits {
		switch e.Op {
		case Match, Sub, Ins:
			out = append(out, e.Token)
		}
	}
	return out
}

// Property: the edit script reproduces the document and covers the
// reference exactly once.
func TestPairwiseScriptReconstructs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := randSeq(rng, 20, 6)
		doc := randSeq(rng, 20, 6)
		a := Pairwise(ref, doc)
		if !reflect.DeepEqual(reconstruct(a.Edits), doc) && len(doc) > 0 {
			return false
		}
		refCover := 0
		for _, e := range a.Edits {
			if e.Op != Ins {
				refCover++
			}
		}
		return refCover == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: alignment distance is symmetric and obeys triangle-ish bounds:
// 0 <= d <= max(len) and d == 0 iff equal.
func TestPairwiseDistanceProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randSeq(rng, 15, 4)
		y := randSeq(rng, 15, 4)
		dxy := Pairwise(x, y).Distance()
		dyx := Pairwise(y, x).Distance()
		if dxy != dyx {
			return false
		}
		if dxy == 0 != reflect.DeepEqual(x, y) && !(len(x) == 0 && len(y) == 0) {
			return false
		}
		maxLen := len(x)
		if len(y) > maxLen {
			maxLen = len(y)
		}
		return dxy >= 0 && dxy <= maxLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func randSeq(rng *rand.Rand, maxLen, alphabet int) []int {
	n := rng.Intn(maxLen)
	s := make([]int, n)
	for i := range s {
		s[i] = rng.Intn(alphabet)
	}
	return s
}

func TestConditionalCostFavorsNearDuplicates(t *testing.T) {
	V := 1 << 14
	ref := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	nearDup := []int{1, 2, 3, 4, 99, 6, 7, 8, 9, 10}
	unrelated := []int{20, 21, 22, 23, 24, 25, 26, 27, 28, 29}
	if ConditionalCost(ref, nearDup, V) >= StandaloneCost(nearDup, V) {
		t.Error("near-duplicate should compress against ref")
	}
	if ConditionalCost(ref, unrelated, V) < StandaloneCost(unrelated, V) {
		t.Error("unrelated doc should NOT compress against ref")
	}
}

// Property: an exact duplicate always passes the candidate test for
// documents of reasonable length.
func TestConditionalCostDuplicateAlwaysJoins(t *testing.T) {
	V := 1 << 12
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randSeq(rng, 40, 50)
		if len(doc) < 4 {
			return true
		}
		return ConditionalCost(doc, doc, V) < StandaloneCost(doc, V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
