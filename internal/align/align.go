// Package align provides token-level sequence alignment: the pairwise
// Needleman–Wunsch aligner used by InfoShield-Fine's candidate selection
// (the C(d|d1) < C(d) test), the multiple-sequence-alignment matrix type
// shared with the POA aligner, and a cheap star-MSA alternative that
// demonstrates Fine is MSA-agnostic.
//
// Sequences are vocabulary token ids (see internal/tokenize). The gap
// marker is Gap (-1), which is never a valid token id.
package align

import "infoshield/internal/mdl"

// Gap marks a missing token in an alignment row or column.
const Gap = -1

// Op is an edit operation type relative to a reference sequence.
type Op int8

// Edit operations. Match is included so an edit script can describe the
// whole alignment, not just the differences.
const (
	Match Op = iota
	Sub
	Ins
	Del
)

// String returns the conventional one-letter code (M, S, I, D).
func (o Op) String() string {
	switch o {
	case Match:
		return "M"
	case Sub:
		return "S"
	case Ins:
		return "I"
	case Del:
		return "D"
	}
	return "?"
}

// Edit is one step of an alignment between a reference and a document.
type Edit struct {
	Op Op
	// RefPos is the reference index (valid for Match, Sub, Del).
	// For Ins it is the reference position the token is inserted before.
	RefPos int
	// Token is the document token (valid for Match, Sub, Ins).
	Token int
}

// Alignment is the result of a pairwise alignment.
type Alignment struct {
	Edits   []Edit
	Matches int
	Subs    int
	Inss    int
	Dels    int
}

// Len returns the alignment length l̂ (total columns).
func (a Alignment) Len() int { return a.Matches + a.Subs + a.Inss + a.Dels }

// Distance returns the edit distance (non-match operations).
func (a Alignment) Distance() int { return a.Subs + a.Inss + a.Dels }

// Pairwise globally aligns doc against ref with unit edit costs,
// preferring matches, then substitutions, then deletions, then insertions
// on ties so output is deterministic. O(len(ref)·len(doc)) time and space.
func Pairwise(ref, doc []int) Alignment {
	n, m := len(ref), len(doc)
	// dp[i][j]: min edits aligning ref[:i] with doc[:j].
	dp := make([][]int32, n+1)
	for i := range dp {
		dp[i] = make([]int32, m+1)
	}
	for i := 1; i <= n; i++ {
		dp[i][0] = int32(i)
	}
	for j := 1; j <= m; j++ {
		dp[0][j] = int32(j)
	}
	for i := 1; i <= n; i++ {
		ri := ref[i-1]
		row, prev := dp[i], dp[i-1]
		for j := 1; j <= m; j++ {
			diag := prev[j-1]
			if ri != doc[j-1] {
				diag++
			}
			best := diag
			if v := prev[j] + 1; v < best { // delete ref[i-1]
				best = v
			}
			if v := row[j-1] + 1; v < best { // insert doc[j-1]
				best = v
			}
			row[j] = best
		}
	}
	// Backtrack.
	var rev []Edit
	a := Alignment{}
	i, j := n, m
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && ref[i-1] == doc[j-1] && dp[i][j] == dp[i-1][j-1]:
			rev = append(rev, Edit{Op: Match, RefPos: i - 1, Token: doc[j-1]})
			a.Matches++
			i, j = i-1, j-1
		case i > 0 && j > 0 && dp[i][j] == dp[i-1][j-1]+1 && ref[i-1] != doc[j-1]:
			rev = append(rev, Edit{Op: Sub, RefPos: i - 1, Token: doc[j-1]})
			a.Subs++
			i, j = i-1, j-1
		case i > 0 && dp[i][j] == dp[i-1][j]+1:
			rev = append(rev, Edit{Op: Del, RefPos: i - 1})
			a.Dels++
			i--
		default: // j > 0
			rev = append(rev, Edit{Op: Ins, RefPos: i, Token: doc[j-1]})
			a.Inss++
			j--
		}
	}
	// Reverse into forward order.
	a.Edits = make([]Edit, len(rev))
	for k, e := range rev {
		a.Edits[len(rev)-1-k] = e
	}
	return a
}

// PairwiseWild is Pairwise against a reference with wildcard positions:
// ref[i] with wild[i] set matches any document token at zero cost (a
// template's slot). Used by the streaming detector to test new documents
// against already-mined templates.
func PairwiseWild(ref []int, wild []bool, doc []int) Alignment {
	n, m := len(ref), len(doc)
	dp := make([][]int32, n+1)
	for i := range dp {
		dp[i] = make([]int32, m+1)
	}
	for i := 1; i <= n; i++ {
		dp[i][0] = int32(i)
	}
	for j := 1; j <= m; j++ {
		dp[0][j] = int32(j)
	}
	matches := func(i, j int) bool {
		return wild[i-1] || ref[i-1] == doc[j-1]
	}
	for i := 1; i <= n; i++ {
		row, prev := dp[i], dp[i-1]
		for j := 1; j <= m; j++ {
			diag := prev[j-1]
			if !matches(i, j) {
				diag++
			}
			best := diag
			if v := prev[j] + 1; v < best {
				best = v
			}
			if v := row[j-1] + 1; v < best {
				best = v
			}
			row[j] = best
		}
	}
	var rev []Edit
	a := Alignment{}
	i, j := n, m
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && matches(i, j) && dp[i][j] == dp[i-1][j-1]:
			rev = append(rev, Edit{Op: Match, RefPos: i - 1, Token: doc[j-1]})
			a.Matches++
			i, j = i-1, j-1
		case i > 0 && j > 0 && dp[i][j] == dp[i-1][j-1]+1 && !matches(i, j):
			rev = append(rev, Edit{Op: Sub, RefPos: i - 1, Token: doc[j-1]})
			a.Subs++
			i, j = i-1, j-1
		case i > 0 && dp[i][j] == dp[i-1][j]+1:
			rev = append(rev, Edit{Op: Del, RefPos: i - 1})
			a.Dels++
			i--
		default:
			rev = append(rev, Edit{Op: Ins, RefPos: i, Token: doc[j-1]})
			a.Inss++
			j--
		}
	}
	a.Edits = make([]Edit, len(rev))
	for k, e := range rev {
		a.Edits[len(rev)-1-k] = e
	}
	return a
}

// ConditionalCost returns C(doc|ref): the MDL cost of encoding doc using
// ref as a slot-free single template (Section IV-B.1 uses this to build
// the candidate set: d joins when C(d|d1) < C(d)).
func ConditionalCost(ref, doc []int, vocabSize int) float64 {
	var sc Scratch
	return ConditionalCostScratch(ref, doc, vocabSize, &sc)
}

// ConditionalCostScratch is ConditionalCost with a caller-owned Scratch:
// the DP table is reused across calls and no edit script is built. The
// returned cost is bit-identical to ConditionalCost's.
func ConditionalCostScratch(ref, doc []int, vocabSize int, sc *Scratch) float64 {
	matches, subs, inss, dels := pairwiseStats(ref, doc, sc)
	return mdl.DataCostMatched(mdl.AlignStats{
		AlignLen:   matches + subs + inss + dels,
		Unmatched:  subs + inss + dels,
		AddedWords: subs + inss,
	}, 1, vocabSize)
}

// StandaloneCost returns C(doc): the cost of the document with no template.
func StandaloneCost(doc []int, vocabSize int) float64 {
	return mdl.DocCost(len(doc), vocabSize)
}
