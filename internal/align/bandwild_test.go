package align

import (
	"math/rand"
	"testing"
)

// bandedInput decodes a fuzz byte stream into a wildcard-alignment case.
// Unlike fuzzWildInput it lets refLen straddle WildBitCap — the banded DP
// does not depend on the bit-parallel machinery, and the serving path's
// long-reference fallback deserves coverage too.
func bandedInput(data []byte) (ref []int, wild []bool, doc []int) {
	if len(data) < 3 {
		return nil, nil, nil
	}
	refLen := 1 + int(data[0])%96 // 1..96, straddling WildBitCap=64
	docLen := int(data[1]) % 96
	alpha := 1 + int(data[2])%5
	data = data[3:]
	at := 0
	next := func() byte {
		if at >= len(data) {
			at = 0
		}
		if len(data) == 0 {
			return 0
		}
		b := data[at]
		at++
		return b
	}
	ref = make([]int, refLen)
	wild = make([]bool, refLen)
	for i := range ref {
		b := next()
		ref[i] = int(b) % alpha
		wild[i] = b%7 == 0
	}
	doc = make([]int, docLen)
	for j := range doc {
		doc[j] = int(next()) % alpha
	}
	return ref, wild, doc
}

// checkBandedEqual pins PairwiseWildBanded op-for-op against the full DP
// for one (case, seed) pair and returns the retry count.
func checkBandedEqual(t *testing.T, ref []int, wild []bool, doc []int, dist int) int {
	t.Helper()
	var scFull, scBand Scratch
	want := PairwiseWildScratch(ref, wild, doc, &scFull)
	got, retries := PairwiseWildBanded(ref, wild, doc, dist, &scBand)
	if got.Matches != want.Matches || got.Subs != want.Subs ||
		got.Inss != want.Inss || got.Dels != want.Dels {
		t.Fatalf("banded (dist=%d, ref=%d, doc=%d) = %+v, full DP = %+v",
			dist, len(ref), len(doc), got, want)
	}
	return retries
}

// FuzzWildBanded drives the banded wildcard DP against PairwiseWildScratch
// with the exact distance as the seed (retries must be zero: the optimal
// path fits the band) and with a deliberately underestimated seed (the
// widen-and-retry path must still converge to the identical alignment).
func FuzzWildBanded(f *testing.F) {
	f.Add([]byte{10, 12, 3, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{70, 80, 2, 9, 9, 1, 0, 0, 3})     // refLen > WildBitCap
	f.Add([]byte{64, 64, 1, 0})                    // refLen == WildBitCap, all-equal
	f.Add([]byte{5, 0, 4, 1, 2})                   // empty document
	f.Add([]byte{1, 95, 5, 200, 100, 50, 25, 12})  // near-empty reference
	f.Fuzz(func(t *testing.T, data []byte) {
		ref, wild, doc := bandedInput(data)
		if ref == nil {
			t.Skip()
		}
		var sc Scratch
		exact := PairwiseWildScratch(ref, wild, doc, &sc).Distance()
		if r := checkBandedEqual(t, ref, wild, doc, exact); r != 0 {
			t.Fatalf("exact seed %d still retried %d times", exact, r)
		}
		// Underestimated seeds must widen-and-retry into the same result.
		for _, seed := range []int{0, exact / 2} {
			checkBandedEqual(t, ref, wild, doc, seed)
		}
	})
}

// TestWildBandedRandom is the deterministic CI-shaped slice of the fuzz
// space: random masks and lengths on both sides of WildBitCap, exact and
// underestimated seeds, plus a check that underestimates actually force
// the retry loop at least sometimes (so the widen path is known-live).
func TestWildBandedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sawRetry := false
	for it := 0; it < 3000; it++ {
		refLen := 1 + rng.Intn(90)
		docLen := rng.Intn(90)
		alpha := 1 + rng.Intn(5)
		ref := make([]int, refLen)
		wild := make([]bool, refLen)
		for i := range ref {
			ref[i] = rng.Intn(alpha)
			wild[i] = rng.Intn(7) == 0
		}
		doc := make([]int, docLen)
		for j := range doc {
			doc[j] = rng.Intn(alpha)
		}
		var sc Scratch
		exact := PairwiseWildScratch(ref, wild, doc, &sc).Distance()
		if r := checkBandedEqual(t, ref, wild, doc, exact); r != 0 {
			t.Fatalf("exact seed retried %d times (ref=%d doc=%d)", r, refLen, docLen)
		}
		if r := checkBandedEqual(t, ref, wild, doc, 0); r > 0 {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatal("no underestimated seed ever exercised the widen-and-retry path")
	}
}

// TestWildBandedAgainstBitParallel seeds the band exactly the way the
// serving path does — with WildDistanceMasked — and checks the contract
// end to end for references within the bit cap.
func TestWildBandedAgainstBitParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for it := 0; it < 2000; it++ {
		refLen := 1 + rng.Intn(WildBitCap)
		docLen := rng.Intn(40)
		alpha := 1 + rng.Intn(4)
		ref := make([]int, refLen)
		wild := make([]bool, refLen)
		for i := range ref {
			ref[i] = rng.Intn(alpha)
			wild[i] = rng.Intn(6) == 0
		}
		doc := make([]int, docLen)
		for j := range doc {
			doc[j] = rng.Intn(alpha)
		}
		dist := WildDistance(ref, wild, doc)
		if r := checkBandedEqual(t, ref, wild, doc, dist); r != 0 {
			t.Fatalf("bit-parallel seed retried %d times", r)
		}
	}
}
