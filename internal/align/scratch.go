package align

// Scratch holds the reusable DP buffer behind the stats-only pairwise
// aligner. InfoShield-Fine's candidate screen runs one O(l²) alignment
// per surviving neighbor per round; without a scratch each of those
// allocated a fresh (n+1)×(m+1) table plus an edit script. A Scratch is
// owned by exactly one goroutine at a time — the fine pass threads one
// per worker — and grows monotonically to the largest table it has seen.
type Scratch struct {
	dp []int32
}

// table returns a zero-length-agnostic DP buffer with capacity for
// cells many int32 cells. Contents are garbage; callers overwrite.
func (s *Scratch) table(cells int) []int32 {
	if cap(s.dp) < cells {
		s.dp = make([]int32, cells)
	}
	return s.dp[:cells]
}

// pairwiseStats runs the same global alignment DP as Pairwise — identical
// scores, identical match>sub>del>ins tie-breaking — but only counts the
// edit operations instead of materializing the edit script, and fills its
// table from sc instead of allocating. The counts (and therefore every
// MDL cost derived from them) are bit-identical to Pairwise's.
func pairwiseStats(ref, doc []int, sc *Scratch) (matches, subs, inss, dels int) {
	n, m := len(ref), len(doc)
	width := m + 1
	dp := sc.table((n + 1) * width)
	for j := 0; j <= m; j++ {
		dp[j] = int32(j)
	}
	for i := 1; i <= n; i++ {
		ri := ref[i-1]
		row, prev := dp[i*width:(i+1)*width], dp[(i-1)*width:i*width]
		row[0] = int32(i)
		for j := 1; j <= m; j++ {
			diag := prev[j-1]
			if ri != doc[j-1] {
				diag++
			}
			best := diag
			if v := prev[j] + 1; v < best { // delete ref[i-1]
				best = v
			}
			if v := row[j-1] + 1; v < best { // insert doc[j-1]
				best = v
			}
			row[j] = best
		}
	}
	i, j := n, m
	for i > 0 || j > 0 {
		cur := dp[i*width+j]
		switch {
		case i > 0 && j > 0 && ref[i-1] == doc[j-1] && cur == dp[(i-1)*width+j-1]:
			matches++
			i, j = i-1, j-1
		case i > 0 && j > 0 && cur == dp[(i-1)*width+j-1]+1 && ref[i-1] != doc[j-1]:
			subs++
			i, j = i-1, j-1
		case i > 0 && cur == dp[(i-1)*width+j]+1:
			dels++
			i--
		default: // j > 0
			inss++
			j--
		}
	}
	return matches, subs, inss, dels
}
